// Command ezsim runs one mesh scenario and prints per-flow statistics plus
// optional CSV traces (queue occupancy, throughput, delay, contention
// windows) for plotting.
//
// Usage:
//
//	ezsim -topology chain -hops 4 -mode ezflow -duration 600 -seed 1
//	ezsim -topology scenario1 -mode 802.11 -trace-dir /tmp/traces
//	ezsim -topology testbed -mode ezflow -cap 1024
//	ezsim -topology grid -grid-w 4 -grid-h 4 -mode ezflow
//	ezsim -topology random -nodes 12 -radius 500 -seed 3
//	ezsim -scenario linkfailure.json
//	ezsim -scenario linkfailure.json -mode 802.11 -seed 7
//	ezsim -topology chain -hops 4 -controller backpressure
//
// Topologies: chain (with -hops), testbed, scenario1, scenario2, tree,
// grid (with -grid-w/-grid-h), random (with -nodes/-radius; placement is
// seeded by -seed). Modes: 802.11, ezflow, penalty, diffq.
//
// -controller selects any congestion controller registered in
// internal/ctl by name, overriding -mode; `ezsim -h` enumerates the
// registry. The four head-to-head families are ezflow (passive,
// message-free), backpressure (piggybacked queue differentials), feedback
// (explicit rate-feedback control frames), and staticcap (fixed per-hop
// window).
//
// -mobility selects a mobility model from the internal/mobility
// registry: waypoint (random-waypoint commuters over the deployment's
// bounding box) or trace (scripted positions from a file — scenario
// files only, via the mobility block's trace_file). `-mobility off`
// pins a scenario file's mobile nodes in place for a static control
// run. -speed and -pause tune the model; -clients synthesizes a
// gateway-centred downlink client population (or resizes a scenario
// file's workload block). Node 0 (the gateway) never moves. Mobile runs
// re-patch the PHY neighbor index incrementally on every position tick
// and repair routes through the active routing strategy:
//
//	ezsim -topology grid -grid-w 4 -grid-h 4 -mobility waypoint -speed 3
//	ezsim -scenario examples/mobility/waypoint.json
//	ezsim -scenario examples/mobility/waypoint.json -mobility off
//	ezsim -topology grid -mobility waypoint -clients 8
//
// -routing selects a routing strategy from the internal/routing registry:
// bfs (minimum hop count, the default — byte-identical to the builder's
// installed routes), etx (expected-transmission-count link quality over
// the calibrated per-link losses), or kshortest (deterministic k-shortest
// multipath with per-flow path spreading). Non-default strategies
// recompute every route at wiring and drive route repair under dynamics.
//
// Observability (see internal/obs and "Inspecting a run" in README.md):
// -obs serves live metrics, progress and pprof over HTTP while the run
// executes (with -obs-hold keeping the endpoint up afterwards);
// -flightrec dumps the last -flightrec-size packet-lifecycle events as
// JSONL, filterable by -flightrec-flow and -flightrec-node; -metrics
// exports the final metrics snapshot as JSON; -cpuprofile and
// -memprofile write Go profiles. None of these change a run's results.
//
// -scenario runs a declarative JSON scenario file instead — topology,
// flows, and a dynamics timeline of timed perturbations (link flaps, node
// churn, channel degradation, traffic steps); see internal/scenario for
// the format. The file governs the run, but -mode, -seed, -duration and
// -cap still override it when set explicitly. Runs with faults print
// recovery metrics and the applied-event log.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ezflow"
	"ezflow/internal/buildinfo"
	"ezflow/internal/ctl"
	"ezflow/internal/mobility"
	"ezflow/internal/plot"
	"ezflow/internal/routing"
	"ezflow/internal/scenario"
	"ezflow/internal/stats"
	"ezflow/internal/trace"
)

func main() {
	var (
		topology = flag.String("topology", "chain", "chain|testbed|scenario1|scenario2|tree|grid|random")
		scenFile = flag.String("scenario", "", "JSON scenario file (topology+flows+dynamics; overrides topology flags)")
		hops     = flag.Int("hops", 4, "number of hops for the chain topology")
		gridW    = flag.Int("grid-w", 4, "grid width for -topology grid")
		gridH    = flag.Int("grid-h", 4, "grid height for -topology grid")
		nodes    = flag.Int("nodes", 12, "node count for -topology random")
		radius   = flag.Float64("radius", 0, "disk radius in metres for -topology random (0 = auto)")
		edgeLoss = flag.Float64("edge-loss", 0, "edge-of-range loss ceiling in [0,1) for -topology random (0 = loss-free links)")
		mode     = flag.String("mode", "ezflow", "802.11|ezflow|penalty|diffq")
		ctlName  = flag.String("controller", "", "congestion controller from the registry, overriding -mode: "+strings.Join(ezflow.Controllers(), "|")+" (or 802.11 for none); registered controllers:\n"+ezflow.ControllerUsage())
		routName = flag.String("routing", "", "routing strategy from the registry: "+strings.Join(ezflow.Routings(), "|")+" (empty = bfs, the builder's minimum-hop routes); registered strategies:\n"+ezflow.RoutingUsage())
		mobName  = flag.String("mobility", "", "mobility model from the registry: "+strings.Join(ezflow.Mobilities(), "|")+" (or off to pin a scenario file's mobile nodes); registered models:\n"+ezflow.MobilityUsage())
		speed    = flag.Float64("speed", 0, "mobile node speed in m/s (needs -mobility or a scenario mobility block)")
		pause    = flag.Float64("pause", 0, "waypoint dwell seconds at each destination (needs -mobility or a scenario mobility block)")
		clients  = flag.Int("clients", 0, "gateway client population size (synthesizes a downlink workload, or resizes a scenario file's)")
		duration = flag.Float64("duration", 600, "simulated seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		rate     = flag.Float64("rate", 2e6, "per-flow CBR rate in bit/s")
		cap      = flag.Int("cap", 0, "hardware CWmin cap (0 = none; 1024 reproduces the testbed)")
		penaltyQ = flag.Float64("q", 1.0/128, "penalty factor for -mode penalty")
		traceDir = flag.String("trace-dir", "", "write CSV traces into this directory")
		doPlot   = flag.Bool("plot", false, "render ASCII charts of queues, throughput and cw")
		version  = flag.Bool("version", false, "print version and exit")
	)
	var o obsOpts
	o.registerFlags()
	flag.Parse()
	if *version {
		fmt.Println("ezsim " + buildinfo.String())
		return
	}

	if err := validateController(*ctlName); err != nil {
		fatalf("%v", err)
	}
	if err := validateRouting(*routName); err != nil {
		fatalf("%v", err)
	}
	if err := validateMobility(*mobName); err != nil {
		fatalf("%v", err)
	}

	if *scenFile != "" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		runScenarioFile(*scenFile, set, overrides{
			mode: *mode, ctlName: *ctlName, routName: *routName,
			mobName: *mobName, speed: *speed, pause: *pause, clients: *clients,
			seed: *seed, durationSec: *duration, cwCap: *cap,
		}, *traceDir, *doPlot, &o)
		return
	}

	cfg := ezflow.DefaultConfig()
	cfg.Seed = *seed
	cfg.Duration = ezflow.Time(*duration * float64(ezflow.Second))
	cfg.MAC.HardwareCWCap = *cap
	cfg.PenaltyQ = *penaltyQ
	switch *mode {
	case "802.11":
		cfg.Mode = ezflow.Mode80211
	case "ezflow":
		cfg.Mode = ezflow.ModeEZFlow
	case "penalty":
		cfg.Mode = ezflow.ModePenalty
	case "diffq":
		cfg.Mode = ezflow.ModeDiffQ
	default:
		fatalf("unknown mode %q", *mode)
	}
	if *ctlName != "" {
		if ctl.IsNone(*ctlName) {
			cfg.Mode = ezflow.Mode80211
		} else {
			cfg.Controller = *ctlName
		}
	}
	cfg.Routing = *routName
	if *mobName != "" && !mobility.IsOff(*mobName) {
		cfg.Mobility = &mobility.Config{
			Model: *mobName,
			Opts:  mobility.Options{SpeedMps: *speed, PauseSec: *pause},
		}
	} else if *speed > 0 || *pause > 0 {
		fatalf("-speed/-pause need -mobility (or a -scenario file with a mobility block)")
	}
	if *clients > 0 {
		cfg.Workload = &ezflow.WorkloadSpec{Clients: *clients}
	}

	var sc *ezflow.Scenario
	switch *topology {
	case "chain":
		sc = ezflow.NewChain(*hops, cfg, ezflow.FlowSpec{Flow: 1, RateBps: *rate})
	case "testbed":
		sc = ezflow.NewTestbed(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: *rate},
			ezflow.FlowSpec{Flow: 2, RateBps: *rate})
	case "scenario1":
		sc = ezflow.NewScenario1(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: *rate},
			ezflow.FlowSpec{Flow: 2, RateBps: *rate})
	case "scenario2":
		sc = ezflow.NewScenario2(cfg,
			ezflow.FlowSpec{Flow: 1, RateBps: *rate},
			ezflow.FlowSpec{Flow: 2, RateBps: *rate},
			ezflow.FlowSpec{Flow: 3, RateBps: *rate})
	case "tree":
		sc = ezflow.NewTree(3, 2, cfg)
	case "grid":
		if *gridW < 1 || *gridH < 1 || *gridW**gridH < 2 {
			fatalf("grid needs -grid-w/-grid-h >= 1 with at least 2 nodes (got %dx%d)", *gridW, *gridH)
		}
		specs := []ezflow.FlowSpec{{Flow: 1, RateBps: *rate}}
		if *gridW > 1 && *gridH > 1 {
			specs = append(specs, ezflow.FlowSpec{Flow: 2, RateBps: *rate})
		}
		sc = ezflow.NewGrid(*gridW, *gridH, cfg, specs...)
	case "random":
		if *nodes < 2 {
			fatalf("random needs -nodes >= 2 (got %d)", *nodes)
		}
		if *edgeLoss < 0 || *edgeLoss >= 1 {
			fatalf("-edge-loss %g out of [0,1)", *edgeLoss)
		}
		// RandomDisk panics when no connected placement exists (radius too
		// large for the transmission range); surface that as a clean CLI
		// error rather than a stack trace.
		sc = buildOrFail(func() *ezflow.Scenario {
			return ezflow.NewRandomLossy(*nodes, *radius, *edgeLoss, cfg,
				ezflow.FlowSpec{Flow: 1, RateBps: *rate})
		})
	default:
		fatalf("unknown topology %q", *topology)
	}

	res := o.run(sc)
	printSummary(res)
	if *doPlot {
		printPlots(res)
	}
	if *traceDir != "" {
		if err := writeTraces(res, *traceDir); err != nil {
			fatalf("writing traces: %v", err)
		}
		fmt.Printf("traces written to %s\n", *traceDir)
	}
}

// validateController rejects controller names absent from the registry
// (the 802.11/off spellings, ctl.IsNone, select no controller at all).
func validateController(name string) error {
	if ctl.IsNone(name) {
		return nil
	}
	if _, ok := ctl.ByName(name); ok {
		return nil
	}
	return fmt.Errorf("unknown controller %q (registered: %s)", name, strings.Join(ezflow.Controllers(), ", "))
}

// validateRouting rejects routing-strategy names absent from the registry
// (empty selects the default minimum-hop routes).
func validateRouting(name string) error {
	if name == "" {
		return nil
	}
	if _, ok := routing.ByName(name); ok {
		return nil
	}
	return fmt.Errorf("unknown routing strategy %q (registered: %s)", name, strings.Join(ezflow.Routings(), ", "))
}

// validateMobility rejects mobility-model names absent from the registry
// (the off/static spellings, mobility.IsOff, select no mobility).
func validateMobility(name string) error {
	if mobility.IsOff(name) {
		return nil
	}
	if _, ok := mobility.ByName(name); ok {
		return nil
	}
	return fmt.Errorf("unknown mobility model %q (registered: %s, or off for static)", name, strings.Join(ezflow.Mobilities(), ", "))
}

// overrides carries the flag values that may override a scenario file;
// each applies only when its flag was passed explicitly.
type overrides struct {
	mode, ctlName, routName string
	mobName                 string
	speed, pause            float64
	clients                 int
	seed                    int64
	durationSec             float64
	cwCap                   int
}

// runScenarioFile executes a declarative scenario file, letting -mode,
// -controller, -routing, -mobility, -speed, -pause, -clients, -seed,
// -duration and -cap override the file when passed explicitly (set holds
// the names of flags present on the command line).
func runScenarioFile(path string, set map[string]bool, ov overrides,
	traceDir string, doPlot bool, o *obsOpts) {
	spec, err := scenario.Load(path)
	if err != nil {
		fatalf("%v", err)
	}
	if set["mode"] {
		spec.Mode = ov.mode
		spec.Controller = ""
	}
	if set["controller"] {
		spec.Mode = ""
		spec.Controller = ov.ctlName
		if ctl.IsNone(ov.ctlName) {
			spec.Controller = "" // plain 802.11: no controller at all
		}
	}
	if set["routing"] {
		spec.Routing = ov.routName
	}
	if set["mobility"] {
		switch {
		case mobility.IsOff(ov.mobName):
			// Static control run: drop the file's block entirely.
			spec.Mobility = nil
		case spec.Mobility != nil:
			// A swept model inherits the file's tuned speed/pause/tick,
			// mirroring the campaign mobility axis. A trace file bound to
			// the old model would fail validation under the new one.
			spec.Mobility.Model = ov.mobName
			if ov.mobName != "trace" {
				spec.Mobility.TraceFile = ""
			}
		default:
			spec.Mobility = &scenario.Mobility{Model: ov.mobName}
		}
	}
	if set["speed"] || set["pause"] {
		if spec.Mobility == nil {
			fatalf("-speed/-pause need a mobility model (-mobility, or a mobility block in %s)", path)
		}
		if set["speed"] {
			spec.Mobility.SpeedMps = ov.speed
		}
		if set["pause"] {
			spec.Mobility.PauseSec = ov.pause
		}
	}
	if set["clients"] {
		if spec.Workload == nil {
			spec.Workload = &scenario.Workload{}
		}
		spec.Workload.Clients = ov.clients
	}
	if set["seed"] {
		spec.Seed = ov.seed
	}
	if set["duration"] {
		spec.DurationSec = ov.durationSec
	}
	if set["cap"] {
		spec.CWCap = ov.cwCap
	}
	if err := spec.Validate(); err != nil {
		fatalf("%v", err)
	}
	sc, err := spec.Build()
	if err != nil {
		fatalf("%v", err)
	}
	if spec.Name != "" {
		fmt.Printf("scenario %q\n", spec.Name)
	}
	res := o.run(sc)
	printSummary(res)
	if doPlot {
		printPlots(res)
	}
	if traceDir != "" {
		if err := writeTraces(res, traceDir); err != nil {
			fatalf("writing traces: %v", err)
		}
		fmt.Printf("traces written to %s\n", traceDir)
	}
}

func printSummary(res *ezflow.Result) {
	rt := ""
	if res.Cfg.Routing != "" {
		rt = " routing=" + res.Cfg.Routing
	}
	if res.Cfg.Controller != "" {
		fmt.Printf("controller=%s%s duration=%v seed=%d\n", res.Cfg.Controller,
			rt, res.Cfg.Duration, res.Cfg.Seed)
	} else {
		fmt.Printf("mode=%v%s duration=%v seed=%d\n", res.Cfg.Mode,
			rt, res.Cfg.Duration, res.Cfg.Seed)
	}
	var flows []ezflow.FlowID
	for f := range res.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		fr := res.Flows[f]
		fmt.Printf("%v: %7.1f ± %5.1f kb/s   delay mean %6.3fs p95 %6.3fs max %6.3fs   (%d pkts)\n",
			f, fr.MeanThroughputKbps, fr.StdThroughputKbps,
			fr.MeanDelaySec, fr.P95DelaySec, fr.MaxDelaySec, fr.Delivered)
	}
	if len(flows) > 1 {
		fmt.Printf("aggregate %.1f kb/s, Jain FI %.3f\n", res.AggKbps, res.Fairness)
	}
	var nodes []ezflow.NodeID
	for n := range res.MeanQueue {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	fmt.Print("mean queue: ")
	for _, n := range nodes {
		if res.MeanQueue[n] >= 0.05 {
			fmt.Printf("%v=%.1f ", n, res.MeanQueue[n])
		}
	}
	fmt.Println()
	if len(res.FinalCW) > 0 {
		var keys []string
		for k := range res.FinalCW {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Print("final cw: ")
		for _, k := range keys {
			fmt.Printf("%s=%d ", k, res.FinalCW[k])
		}
		fmt.Println()
	}
	if res.OverheadBytes > 0 {
		fmt.Printf("message-passing overhead: %d bytes\n", res.OverheadBytes)
	}
	if st := res.MobilityStats; st != nil {
		fmt.Printf("mobility: %d ticks, %d moves (%d deferred), %d route repairs\n",
			st.Ticks, st.Moves, st.Deferred, st.Repairs)
	}
	if len(res.DynamicsLog) > 0 {
		fmt.Println("dynamics:")
		for _, ev := range res.DynamicsLog {
			fmt.Printf("  [%v] %s\n", ev.At, ev.Desc)
		}
	}
	if st := res.Stability; st != nil {
		fmt.Printf("stability (fault at %v, tolerance %.0f%%):\n", st.FaultAt, st.Tolerance*100)
		var flows []ezflow.FlowID
		for f := range st.RecoverySec {
			flows = append(flows, f)
		}
		sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
		for _, f := range flows {
			rec := "never recovered"
			if r := st.RecoverySec[f]; r >= 0 {
				rec = fmt.Sprintf("recovered in %.1fs", r)
			}
			fmt.Printf("  %v: pre-fault %.1f kb/s, %s\n", f, st.PreFaultKbps[f], rec)
		}
		fmt.Printf("  max relay excursion %.0f pkts, tail max %.0f pkts\n",
			st.MaxQueueExcursion, st.TailMaxQueuePkts)
	}
}

// printPlots renders the figures of the paper for this run: relay buffer
// evolution (Figs. 1 and 4), per-flow throughput (Fig. 6), and the
// contention-window staircases (Figs. 8 and 11).
func printPlots(res *ezflow.Result) {
	var queues []*stats.Series
	var nodes []ezflow.NodeID
	for n := range res.QueueTraces {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		s := res.QueueTraces[n]
		if s.Mean() >= 0.5 { // skip idle nodes to keep the chart readable
			s.Name = fmt.Sprintf("%v", n)
			queues = append(queues, s)
		}
	}
	fmt.Print(plot.Chart("\nbuffer evolution (cf. paper Figs. 1/4)",
		plot.Options{YLabel: "queue [pkts]"}, queues...))

	var thr []*stats.Series
	var flows []ezflow.FlowID
	for f := range res.Flows {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, f := range flows {
		s := res.Flows[f].Throughput
		s.Name = fmt.Sprintf("%v", f)
		thr = append(thr, s)
	}
	fmt.Print(plot.Chart("\nthroughput (cf. paper Fig. 6)",
		plot.Options{YLabel: "kb/s"}, thr...))

	if len(res.CWTraces) > 0 {
		traces := make(map[string][]plot.CWPoint, len(res.CWTraces))
		for key, tr := range res.CWTraces {
			pts := make([]plot.CWPoint, len(tr))
			for i, p := range tr {
				pts[i] = plot.CWPoint{At: p.At, CW: p.CW}
			}
			traces[key] = pts
		}
		fmt.Print(plot.CWStaircase("\ncontention windows (cf. paper Figs. 8/11)",
			plot.Options{}, traces))
	}
}

func writeTraces(res *ezflow.Result, dir string) error {
	b := trace.NewBundle()
	for n, s := range res.QueueTraces {
		b.Series[fmt.Sprintf("queue_%v", n)] = s
	}
	for f, fr := range res.Flows {
		b.Series[fmt.Sprintf("throughput_%v", f)] = fr.Throughput
		b.Series[fmt.Sprintf("delay_%v", f)] = fr.Delay
	}
	for key, tr := range res.CWTraces {
		pts := make([]trace.CWPoint, len(tr))
		for i, p := range tr {
			pts[i] = trace.CWPoint{At: p.At, CW: p.CW}
		}
		b.CW[key] = pts
	}
	_, err := b.WriteDir(dir)
	return err
}

// buildOrFail converts topology-construction panics into the CLI's
// one-line error exit.
func buildOrFail(build func() *ezflow.Scenario) *ezflow.Scenario {
	defer func() {
		if r := recover(); r != nil {
			fatalf("%v", r)
		}
	}()
	return build()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ezsim: "+format+"\n", args...)
	os.Exit(1)
}
