// Command ezmodel runs the discrete-time random-walk model of the paper's
// §6 analysis: the K-hop chain as a walk on the positive orthant, with or
// without the EZ-Flow window dynamics, printing the trajectory statistics,
// the region-visit histogram, the transmission-pattern distribution of the
// current state (Table 4 for K = 4), and the per-region Foster drift check
// behind Theorem 1.
//
// Usage:
//
//	ezmodel -k 4 -steps 500000           # EZ-Flow dynamics (stable)
//	ezmodel -k 4 -steps 500000 -fixed    # fixed windows (unstable)
//	ezmodel -k 6 -ez-table               # pattern distribution dump
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"sort"

	"ezflow/internal/buildinfo"
	"ezflow/internal/markov"
)

func main() {
	var (
		k       = flag.Int("k", 4, "number of hops")
		steps   = flag.Int("steps", 500000, "slots to simulate")
		fixed   = flag.Bool("fixed", false, "disable EZ-Flow (fixed equal windows)")
		initCW  = flag.Int("cw", 32, "initial contention window")
		seed    = flag.Int64("seed", 1, "random seed")
		table   = flag.Bool("ez-table", false, "print the transmission-pattern distribution of the all-backlogged state and exit")
		foster  = flag.Bool("foster", false, "run the per-region Foster drift check (K=4 only)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("ezmodel " + buildinfo.String())
		return
	}

	cfg := markov.DefaultConfig()
	cfg.K = *k
	cfg.InitCW = *initCW
	cfg.EZEnabled = !*fixed
	rng := rand.New(rand.NewSource(*seed))
	w := markov.NewWalk(cfg, rng.Float64)

	if *table {
		for i := 1; i < *k; i++ {
			w.B[i] = 2
		}
		fmt.Printf("pattern distribution, all relays backlogged, cw=%v:\n", w.CW)
		fmt.Print(markov.Describe(w.Patterns()))
		return
	}

	st := w.Run(*steps)
	mode := "EZ-flow"
	if *fixed {
		mode = "fixed-cw"
	}
	fmt.Printf("K=%d %s walk, %d slots\n", *k, mode, *steps)
	fmt.Printf("  max total backlog : %d\n", st.MaxBacklog)
	fmt.Printf("  mean total backlog: %.2f\n", st.MeanBacklog)
	fmt.Printf("  final buffers     : %v\n", w.B[1:])
	fmt.Printf("  final cw          : %v\n", st.FinalCW)
	if *k == 4 {
		var regions []string
		for r := range st.RegionVisits {
			regions = append(regions, r)
		}
		sort.Strings(regions)
		fmt.Print("  region visits     :")
		for _, r := range regions {
			fmt.Printf(" %s=%.1f%%", r, 100*float64(st.RegionVisits[r])/float64(st.Steps))
		}
		fmt.Println()
	}

	if *foster && *k == 4 {
		fmt.Println("Foster condition (6), stabilising cw = [2^11, 16, 16, 16]:")
		var regions []string
		for r := range markov.FosterK {
			regions = append(regions, r)
		}
		sort.Strings(regions)
		for _, region := range regions {
			kk := markov.FosterK[region]
			wf := markov.NewWalk(markov.Config{
				K: 4, InitCW: 32, EZEnabled: false,
				BMin: 0.05, BMax: 20, MinCW: 16, MaxCW: 1 << 15,
			}, rng.Float64)
			copy(wf.CW, []int{1 << 11, 16, 16, 16})
			switch region {
			case "B":
				wf.B[1] = 2
			case "C":
				wf.B[2] = 2
			case "D":
				wf.B[3] = 2
			case "E":
				wf.B[1], wf.B[2] = 2, 2
			case "F":
				wf.B[1], wf.B[3] = 2, 2
			case "G":
				wf.B[2], wf.B[3] = 2, 2
			case "H":
				wf.B[1], wf.B[2], wf.B[3] = 2, 2, 2
			}
			d := wf.DriftK(kk, 20000, rng.Float64)
			fmt.Printf("  region %s (k=%2d): drift %+.4f\n", region, kk, d)
		}
	}
}
