// Command ezcampaign runs a declarative experiment campaign: the
// cartesian product of swept parameters (topology, mode, rate, hops,
// CW cap) with independently seeded replications per grid point, fanned
// out across a worker pool, then aggregated into mean / std / 95% CI per
// point and emitted through the chosen sinks.
//
// Usage:
//
//	ezcampaign -sweep mode=802.11,ezflow,penalty,diffq -sweep hops=2..8 \
//	           -reps 10 -parallel 8 -json out.json
//	ezcampaign -sweep topology=chain,testbed -sweep mode=802.11,ezflow \
//	           -reps 5 -duration 120 -csv runs.csv
//	ezcampaign -sweep topology=grid,random -sweep mode=802.11,ezflow -reps 5
//	ezcampaign -sweep topology=random -sweep nodes=8,12,16,24 -reps 10
//	ezcampaign -sweep hops=3..6 -reps 3 -quiet -json -
//	ezcampaign -sweep mode=802.11,ezflow -sweep flap=0,1 -reps 10
//	ezcampaign -scenario linkfailure.json -sweep mode=802.11,ezflow -reps 5
//	ezcampaign -sweep controller=staticcap,backpressure,feedback,ezflow \
//	           -sweep flap=0,1 -reps 10
//	ezcampaign -sweep routing=bfs,etx,kshortest -sweep mode=802.11,ezflow \
//	           -reps 5
//	ezcampaign -sweep hops=2..8 -reps 10 -cache -shards 4 -json out.json
//
// The controller axis sweeps the congestion-controller registry
// (internal/ctl) head to head — any registered name plus 802.11 for the
// raw baseline; it subsumes (and is mutually exclusive with) the mode
// axis. `ezcampaign -h` enumerates the registered controllers.
//
// The routing axis sweeps the routing-strategy registry
// (internal/routing) the same way: bfs (minimum hop count, the default),
// etx (link-quality cost over the calibrated per-link losses), kshortest
// (deterministic multipath spreading). Strategies other than bfs
// recompute every route at wiring and drive route repair under dynamics.
//
// The fault-injection axes flap and churn (values 0|1) sever the first
// flow's middle link, respectively halt its middle relay, from 40% to 50%
// of each run, with BFS route repair; runs with faults additionally
// report recovery time and post-fault tail queue statistics.
//
// -scenario runs every grid point from a declarative JSON scenario file
// (topology, flows, and dynamics timeline; see internal/scenario). Only
// mode, rate, cap, flap, and churn may then be swept — the file fixes the
// topology — and the file's duration_sec wins over -duration when set.
//
// Results are deterministic: the same spec and seed produce byte-identical
// JSON/CSV regardless of -parallel.
//
// Observability: -obs serves live campaign progress (done/total runs)
// and pprof over HTTP while the grid executes; -cpuprofile/-memprofile
// write Go profiles of the whole campaign; -obs-runs attaches per-run
// metrics and flight recording inside every worker. None of these change
// the emitted results — the golden tests pin byte-identity with
// observability on and off.
//
// The campaign fabric (internal/fabric): -cache consults and fills a
// content-addressed result store at -cache-dir, so repeated sweeps only
// simulate new points (a one-line `cache: X hit / Y miss` summary goes
// to stderr); -shards N fans the grid across N `ezcampaign -worker`
// subprocesses sharing that store, with merged output byte-identical to
// -parallel 1 in one process. SIGINT stops gracefully: in-flight runs
// finish and reach the cache, so rerunning the same command resumes
// where the interrupted sweep stopped. -worker is the subprocess side of
// the shard protocol (a JSON job document on stdin, NDJSON result frames
// on stdout) and is not meant for interactive use.
//
// Fault tolerance: sharded workers run supervised — a worker that
// crashes, corrupts its stream, or (with -liveness) goes silent is
// killed and its unfinished assignments are re-dealt to a replacement
// under capped exponential backoff, with merged output still
// byte-identical to the clean run. An assignment that keeps killing
// workers is marked failed after -max-retries consecutive no-progress
// failures and the campaign completes degraded (failed runs carry
// failed/error in JSON and a failed_runs CSV column, and are excluded
// from aggregates). -run-timeout bounds each replication's wall clock in
// any mode; a breach is a structured per-run failure, as is a panic.
// Every recovery action is counted and reported on a final stderr
// `faults:` line (silent when the campaign was healthy).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"ezflow"
	"ezflow/internal/buildinfo"
	"ezflow/internal/campaign"
	"ezflow/internal/fabric"
	"ezflow/internal/obs"
	"ezflow/internal/scenario"
)

// sweepFlags collects repeated -sweep flags.
type sweepFlags []campaign.Axis

func (s *sweepFlags) String() string {
	var parts []string
	for _, ax := range *s {
		parts = append(parts, ax.Name+"="+strings.Join(ax.Values, ","))
	}
	return strings.Join(parts, " ")
}

func (s *sweepFlags) Set(v string) error {
	ax, err := campaign.ParseSweep(v)
	if err != nil {
		return err
	}
	*s = append(*s, ax)
	return nil
}

func main() {
	var sweeps sweepFlags
	flag.Var(&sweeps, "sweep", "swept axis as axis=v1,v2,... (repeatable; integer ranges like 2..8 expand); axes: topology (chain|testbed|scenario1|scenario2|tree|grid|random) | mode | controller ("+strings.Join(ezflow.Controllers(), "|")+"|802.11; head-to-head over the controller registry) | routing ("+strings.Join(ezflow.Routings(), "|")+"; head-to-head over the routing registry) | hops (chain length / grid side) | rate | cap | nodes (random-disk size) | flap (0|1 mid-run link failure) | churn (0|1 mid-run relay outage)")
	var (
		name     = flag.String("name", "campaign", "campaign name for the report")
		scenFile = flag.String("scenario", "", "JSON scenario file replacing the built-in topologies (fixes topology; its duration wins)")
		reps     = flag.Int("reps", 5, "seed replications per grid point")
		seed     = flag.Int64("seed", 1, "base seed (replication seeds are derived from it)")
		duration = flag.Float64("duration", 120, "simulated seconds per run")
		rate     = flag.Float64("rate", 2e6, "per-flow CBR rate in bit/s when rate is not swept")
		parallel = flag.Int("parallel", 0, "max runs in flight (0 = GOMAXPROCS); does not affect results")
		jsonOut  = flag.String("json", "", "write full JSON result to this file (\"-\" = stdout)")
		csvOut   = flag.String("csv", "", "write per-replication CSV to this file (\"-\" = stdout)")
		quiet    = flag.Bool("quiet", false, "suppress the human-readable report")
		progress = flag.Bool("progress", true, "print live progress to stderr")
		obsAddr  = flag.String("obs", "", "serve live campaign progress and pprof at this address, e.g. 127.0.0.1:8080")
		obsRuns  = flag.Bool("obs-runs", false, "attach per-run observability (metrics + flight recorder) to every run; results stay byte-identical")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = flag.String("memprofile", "", "write a post-campaign heap profile to this file")
		cache    = flag.Bool("cache", false, "consult and fill the content-addressed result store at -cache-dir")
		cacheDir = flag.String("cache-dir", "fabric-cache", "fabric store directory (setting it implies -cache)")
		shards   = flag.Int("shards", 1, "worker subprocesses to fan the grid across (1 = in-process); output is byte-identical for any value")
		worker   = flag.Bool("worker", false, "run as a shard worker: read a job document on stdin, stream result frames on stdout (internal)")
		runTO    = flag.Duration("run-timeout", 0, "wall-clock cap per replication (0 = none); a run over the cap is recorded failed, not aborted")
		liveness = flag.Duration("liveness", 0, "with -shards: kill and replace a worker silent for this long (0 = no deadline); must exceed the slowest single run")
		retries  = flag.Int("max-retries", 0, "with -shards: consecutive no-progress worker failures before an assignment is marked failed (0 = default 3)")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("ezcampaign " + buildinfo.String())
		return
	}
	if *worker {
		if err := campaign.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	useCache := *cache
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cache-dir" {
			useCache = true
		}
	})

	spec := campaign.Spec{
		Name:        *name,
		Axes:        sweeps,
		Reps:        *reps,
		BaseSeed:    *seed,
		DurationSec: *duration,
		RateBps:     *rate,
	}
	if *scenFile != "" {
		s, err := scenario.Load(*scenFile)
		if err != nil {
			fatalf("%v", err)
		}
		spec.Scenario = s
	}
	spec.Obs = *obsRuns

	stopProfiles, err := obs.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatalf("%v", err)
	}
	var srv *obs.Server
	if *obsAddr != "" {
		srv, err = obs.NewServer(*obsAddr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "ezcampaign: observability endpoint at http://%s\n", srv.Addr())
	}

	var store *fabric.Store
	if useCache {
		store, err = fabric.Open(*cacheDir)
		if err != nil {
			fatalf("%v", err)
		}
	}

	// Graceful SIGINT: stop dispatching new runs and let in-flight ones
	// finish — every completed replication is already in the cache (the
	// store's writes are atomic), so rerunning the same command resumes
	// where the sweep stopped. A second ^C aborts immediately.
	interrupt := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\nezcampaign: interrupt — letting in-flight runs finish (^C again to abort)")
		close(interrupt)
		<-sigc
		os.Exit(130)
	}()
	interrupted := func() bool {
		select {
		case <-interrupt:
			return true
		default:
			return false
		}
	}

	var progressFn func(done, total int)
	if *progress || srv != nil {
		printProgress := *progress
		progressFn = func(done, total int) {
			// PublishProgress is atomic, so it is safe from whichever worker
			// goroutine reports completion.
			srv.PublishProgress(obs.Progress{Done: int64(done), Total: int64(total)})
			if !printProgress {
				return
			}
			fmt.Fprintf(os.Stderr, "\rezcampaign: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	var (
		res    *campaign.Result
		cstats campaign.CacheStats
		faults campaign.FaultCounters
	)
	if *shards > 1 {
		exe, exeErr := os.Executable()
		if exeErr != nil {
			fatalf("resolving worker executable: %v", exeErr)
		}
		dir := ""
		if useCache {
			dir = *cacheDir
		}
		res, cstats, err = campaign.RunSharded(spec, campaign.ShardOptions{
			Shards:     *shards,
			Command:    []string{exe, "-worker"},
			CacheDir:   dir,
			Parallel:   *parallel,
			RunTimeout: *runTO,
			Liveness:   *liveness,
			MaxRetries: *retries,
			Faults:     &faults,
			Progress:   progressFn,
		})
	} else {
		eng := campaign.Engine{
			Parallel: *parallel, Cache: store, Interrupt: interrupt, Progress: progressFn,
			RunTimeout: *runTO, Faults: &faults,
		}
		res, err = eng.Run(spec)
		cstats = eng.CacheStats()
	}
	if err == campaign.ErrInterrupted || (err != nil && interrupted()) {
		// A terminal ^C also reaches shard workers (same process group),
		// so a worker error after an interrupt is the interrupt.
		if useCache {
			fmt.Fprintf(os.Stderr, "ezcampaign: interrupted; %d completed runs are cached in %s — rerun the same command to resume\n",
				cstats.Hits+cstats.Misses, *cacheDir)
		} else {
			fmt.Fprintln(os.Stderr, "ezcampaign: interrupted (no -cache: completed runs are lost; add -cache to make interrupts resumable)")
		}
		os.Exit(130)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if err := stopProfiles(); err != nil {
		fatalf("writing profiles: %v", err)
	}
	if srv != nil {
		defer srv.Close() //nolint:errcheck // exiting anyway
	}

	var sinks []campaign.Sink
	if !*quiet {
		sinks = append(sinks, campaign.ReportSink{W: os.Stdout})
	}
	closers := []func() error{}
	open := func(path string) *os.File {
		if path == "-" {
			return os.Stdout
		}
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		closers = append(closers, f.Close)
		return f
	}
	if *jsonOut != "" {
		sinks = append(sinks, campaign.JSONSink{W: open(*jsonOut)})
	}
	if *csvOut != "" {
		sinks = append(sinks, campaign.CSVSink{W: open(*csvOut)})
	}
	for _, s := range sinks {
		if err := s.Emit(res); err != nil {
			fatalf("emitting results: %v", err)
		}
	}
	for _, c := range closers {
		if err := c(); err != nil {
			fatalf("%v", err)
		}
	}
	if useCache {
		fmt.Fprintf(os.Stderr, "cache: %d hit / %d miss\n", cstats.Hits, cstats.Misses)
	}
	// One greppable line whenever the fabric had to handle a fault —
	// silent on healthy campaigns, and the CI chaos smoke asserts on it.
	if fs := faults.Snapshot(); fs != (campaign.FaultStats{}) {
		fmt.Fprintf(os.Stderr,
			"faults: fabric.workers.failures=%d fabric.workers.restarts=%d campaign.runs.retried=%d campaign.runs.timeout=%d campaign.runs.panicked=%d campaign.runs.failed=%d\n",
			fs.WorkerFailures, fs.WorkerRestarts, fs.RunsRetried, fs.RunsTimeout, fs.RunsPanicked, fs.RunsFailed)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ezcampaign: "+format+"\n", args...)
	os.Exit(1)
}
