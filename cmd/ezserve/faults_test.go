package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSubmitBodyTooLarge pins the request-body cap: a submission over
// maxSubmitBytes is rejected with 413 after reading at most the cap —
// not buffered wholesale into server memory.
func TestSubmitBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, "")
	body := `{"name":"` + strings.Repeat("x", maxSubmitBytes+1) + `"}`
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submission: status %d, want 413", resp.StatusCode)
	}
}

// TestHardenedServer pins the http.Server hardening: header/read/idle
// deadlines are set (so slowloris clients cannot pin goroutines) while
// WriteTimeout stays 0 (a write deadline would sever long-lived
// /events streams mid-campaign).
func TestHardenedServer(t *testing.T) {
	srv := hardenedServer(http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-header clients pin goroutines")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset: stalled uploads pin goroutines")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alives accumulate")
	}
	if srv.WriteTimeout != 0 {
		t.Error("WriteTimeout set: it would sever long-lived event streams")
	}
}

// TestServeFaultSurfacing runs a campaign whose every replication trips
// the per-run wall-clock timeout and checks the failure is visible
// everywhere the ops surface promises: the campaign completes degraded
// (not failed), its /status carries the fault tallies, the result JSON
// marks the runs failed, the CSV gains failed_runs=1 rows, and the
// server-wide /stats and /metrics aggregate the counts.
func TestServeFaultSurfacing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real campaigns")
	}
	s, err := newServer(serverOptions{parallel: 2, maxActive: 1, runTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown()
		s.wait()
	})

	st := submit(t, ts, submitBody)
	fin := await(t, ts, st.ID)
	if fin.State != "completed" {
		t.Fatalf("state = %q, want completed (degradation must not fail the campaign): %s", fin.State, fin.Error)
	}
	if fin.Faults == nil || fin.Faults.RunsTimeout != 4 || fin.Faults.RunsFailed != 4 {
		t.Fatalf("status faults = %+v, want 4 timeouts / 4 failed", fin.Faults)
	}

	res := get(t, ts.URL+"/campaigns/"+st.ID+"/result", http.StatusOK)
	if !bytes.Contains(res, []byte(`"failed": true`)) ||
		!bytes.Contains(res, []byte("wall-clock timeout")) {
		t.Error("result JSON lacks the structured run failures")
	}
	csv := get(t, ts.URL+"/campaigns/"+st.ID+"/result.csv", http.StatusOK)
	if !bytes.Contains(csv, []byte("failed_runs")) || !bytes.Contains(csv, []byte(",1\n")) {
		t.Error("result CSV lacks the failed_runs column or failed rows")
	}

	stats := get(t, ts.URL+"/stats", http.StatusOK)
	if !bytes.Contains(stats, []byte(`"runs_timeout":4`)) {
		t.Errorf("/stats lacks aggregated fault counts: %s", stats)
	}
	metrics := get(t, ts.URL+"/metrics", http.StatusOK)
	for _, gauge := range []string{
		"campaign.runs.timeout", "campaign.runs.failed",
		"fabric.workers.failures", "fabric.workers.restarts",
	} {
		if !bytes.Contains(metrics, []byte(gauge)) {
			t.Errorf("/metrics lacks the %s gauge", gauge)
		}
	}
}
