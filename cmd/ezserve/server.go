// The ezserve server: campaign registry, HTTP handlers, and the
// observability registry that exports fabric cache and worker-pool
// health. Handlers follow the obs.Server race discipline — they only
// read atomics and mutex-copied snapshots, never live engine state.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"ezflow/internal/campaign"
	"ezflow/internal/fabric"
	"ezflow/internal/obs"
	"ezflow/internal/scenario"
)

// serverOptions configures a campaign server.
type serverOptions struct {
	cacheDir   string        // fabric store directory; empty disables caching
	parallel   int           // per-campaign worker-pool width (0 = GOMAXPROCS)
	maxActive  int           // campaigns executing at once; the rest queue
	runTimeout time.Duration // per-replication wall-clock cap (0 = none)
}

// maxSubmitBytes caps a POST /campaigns body. Real submissions are a
// few KiB even with an embedded scenario; the cap turns a hostile or
// runaway body into a 413 instead of unbounded server memory.
const maxSubmitBytes = 1 << 20

// server owns the campaign registry and the shared fabric store. One
// goroutine per submitted campaign executes it through an Engine; every
// handler observes progress through job snapshots and atomic counters.
type server struct {
	opts  serverOptions
	cache *fabric.Store
	reg   *obs.Registry

	// active bounds concurrently executing campaigns; queued jobs block
	// acquiring a slot.
	active chan struct{}
	// interrupt is closed once at shutdown; it fans out to every
	// engine's Interrupt and to queued jobs waiting for a slot.
	interrupt     chan struct{}
	interruptOnce sync.Once
	jobWG         sync.WaitGroup

	// runActive counts replications simulating right now across all
	// campaigns (shared Engine.RunActive) — cache hits never touch it.
	runActive atomic.Int64

	// Campaign lifecycle tallies, exported as serve.campaigns.* gauges.
	submitted   atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	interrupted atomic.Int64

	// faults aggregates fault-handling events across every campaign
	// (shared with each engine via Engine.Faults); exported as the
	// fabric.workers.* and campaign.runs.* fault gauges.
	faults campaign.FaultCounters

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // job IDs in submission order
	nextID int
}

// job is one submitted campaign. The engine pointer is immutable after
// creation (its own internals are atomic); everything under mu is
// copied out by snapshot() before any handler serialises it.
type job struct {
	id  string
	eng *campaign.Engine

	mu     sync.Mutex
	spec   campaign.Spec
	state  string // "queued" → "running" → "completed"|"failed"|"interrupted"
	done   int
	total  int
	points int
	reps   int
	errMsg string
	result *campaign.Result
	// change is closed and replaced on every observable transition;
	// event streams wait on it instead of polling hot.
	change chan struct{}
}

// jobStatus is the wire form of one campaign's state. It is compact
// (single-line JSON) so NDJSON event streams and CI greps stay simple.
type jobStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Points int    `json:"points"`
	Reps   int    `json:"reps"`
	// CacheHits / CacheMisses are the campaign's own fabric traffic so
	// far (both 0 when the server runs cache-less).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Faults carries the campaign's own fault tallies (timeouts, panics,
	// failed runs) when any occurred; healthy campaigns omit it, keeping
	// their status lines unchanged.
	Faults *campaign.FaultStats `json:"faults,omitempty"`
	Error  string               `json:"error,omitempty"`
}

// submitRequest is the POST /campaigns body: either CLI-style sweep
// strings, structural axes, or both, plus the usual spec knobs. An
// embedded scenario file replaces the built-in topology grid exactly as
// `ezcampaign -scenario` does.
type submitRequest struct {
	Name        string          `json:"name,omitempty"`
	Sweeps      []string        `json:"sweeps,omitempty"`
	Axes        []campaign.Axis `json:"axes,omitempty"`
	Reps        int             `json:"reps,omitempty"`
	BaseSeed    int64           `json:"base_seed,omitempty"`
	DurationSec float64         `json:"duration_sec,omitempty"`
	RateBps     float64         `json:"rate_bps,omitempty"`
	Scenario    *scenario.Spec  `json:"scenario,omitempty"`
}

// newServer builds a server, opens its fabric store (when configured),
// and registers the observability gauges.
func newServer(o serverOptions) (*server, error) {
	if o.maxActive <= 0 {
		o.maxActive = 1
	}
	s := &server{
		opts:      o,
		active:    make(chan struct{}, o.maxActive),
		interrupt: make(chan struct{}),
		jobs:      make(map[string]*job),
	}
	if o.cacheDir != "" {
		store, err := fabric.Open(o.cacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = store
	}

	// Every probe reads only atomics, so snapshotting the registry from
	// any number of concurrent HTTP handlers is race-free by
	// construction — the same property obs.Server gets from publishing
	// immutable snapshots through an atomic pointer.
	reg := obs.NewRegistry()
	reg.Gauge("fabric.cache.hits", func() float64 { return float64(s.cache.Stats().Hits) })
	reg.Gauge("fabric.cache.misses", func() float64 { return float64(s.cache.Stats().Misses) })
	reg.Gauge("fabric.cache.puts", func() float64 { return float64(s.cache.Stats().Puts) })
	reg.Gauge("fabric.cache.evictions", func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.Gauge("fabric.workers.active", func() float64 { return float64(s.runActive.Load()) })
	slots := float64(o.maxActive * resolveParallel(o.parallel))
	reg.Gauge("fabric.workers.slots", func() float64 { return slots })
	reg.Gauge("fabric.workers.utilization", func() float64 {
		return float64(s.runActive.Load()) / slots
	})
	reg.Gauge("serve.campaigns.submitted", func() float64 { return float64(s.submitted.Load()) })
	reg.Gauge("serve.campaigns.completed", func() float64 { return float64(s.completed.Load()) })
	reg.Gauge("serve.campaigns.failed", func() float64 { return float64(s.failed.Load()) })
	reg.Gauge("serve.campaigns.interrupted", func() float64 { return float64(s.interrupted.Load()) })
	// Fault-handling gauges (PR 9). Worker failures/restarts stay 0 while
	// ezserve executes in-process only, but the schema matches ezcampaign's
	// `faults:` summary so dashboards need one shape.
	reg.Gauge("fabric.workers.failures", func() float64 { return float64(s.faults.Snapshot().WorkerFailures) })
	reg.Gauge("fabric.workers.restarts", func() float64 { return float64(s.faults.Snapshot().WorkerRestarts) })
	reg.Gauge("campaign.runs.retried", func() float64 { return float64(s.faults.Snapshot().RunsRetried) })
	reg.Gauge("campaign.runs.timeout", func() float64 { return float64(s.faults.Snapshot().RunsTimeout) })
	reg.Gauge("campaign.runs.panicked", func() float64 { return float64(s.faults.Snapshot().RunsPanicked) })
	reg.Gauge("campaign.runs.failed", func() float64 { return float64(s.faults.Snapshot().RunsFailed) })
	s.reg = reg
	return s, nil
}

// shutdown stops dispatching new replications (in-flight ones finish
// into the cache) and marks queued campaigns interrupted.
func (s *server) shutdown() {
	s.interruptOnce.Do(func() { close(s.interrupt) })
}

// wait blocks until every campaign goroutine has finished.
func (s *server) wait() { s.jobWG.Wait() }

// hardenedServer wraps the handler in an http.Server with slow-client
// protection: a slowloris peer trickling header bytes, a stalled body
// upload, or a pile of idle keep-alive connections each hits a deadline
// instead of pinning a goroutine forever. WriteTimeout stays 0
// deliberately — /campaigns/{id}/events streams for a campaign's whole
// lifetime, and a write deadline would sever it mid-run.
func hardenedServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /campaigns/{id}/result.csv", s.handleResultCSV)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	return mux
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `ezflow campaign service

POST /campaigns                submit a sweep (JSON body)
GET  /campaigns                list campaigns
GET  /campaigns/{id}           campaign status
GET  /campaigns/{id}/events    NDJSON progress stream
GET  /campaigns/{id}/result    campaign result (JSON)
GET  /campaigns/{id}/result.csv  per-replication CSV
GET  /stats                    cache + worker statistics
GET  /metrics                  observability snapshot
GET  /debug/pprof/             profiling
`)
}

// handleSubmit validates the sweep (Enumerate runs here, so bad axes
// are a 400, not a failed job), registers the campaign, and starts it.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("submission body exceeds %d bytes", tooBig.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding submission: %v", err))
		return
	}
	spec := campaign.Spec{
		Name:        req.Name,
		Axes:        req.Axes,
		Reps:        req.Reps,
		BaseSeed:    req.BaseSeed,
		DurationSec: req.DurationSec,
		RateBps:     req.RateBps,
		Scenario:    req.Scenario,
	}
	for _, sw := range req.Sweeps {
		ax, err := campaign.ParseSweep(sw)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		spec.Axes = append(spec.Axes, ax)
	}
	points, err := spec.Enumerate()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	reps := spec.Reps
	if reps <= 0 {
		reps = 1
	}

	j := &job{
		eng: &campaign.Engine{
			Parallel:   s.opts.parallel,
			Cache:      s.cache,
			Interrupt:  s.interrupt,
			RunActive:  &s.runActive,
			RunTimeout: s.opts.runTimeout,
			Faults:     &s.faults,
		},
		spec:   spec,
		state:  "queued",
		total:  len(points) * reps,
		points: len(points),
		reps:   reps,
		change: make(chan struct{}),
	}
	j.eng.Progress = func(done, total int) { j.setProgress(done) }

	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("c%04d", s.nextID)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.submitted.Add(1)

	s.jobWG.Add(1)
	go s.runJob(j)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(j.snapshot()) //nolint:errcheck // client went away
}

// runJob waits for an execution slot, runs the campaign, and records
// the outcome. Interruption (server shutdown) is terminal but safe:
// every finished replication is already in the cache, so resubmitting
// the same spec resumes from there.
func (s *server) runJob(j *job) {
	defer s.jobWG.Done()
	select {
	case s.active <- struct{}{}:
		defer func() { <-s.active }()
	case <-s.interrupt:
		j.finish(nil, campaign.ErrInterrupted)
		s.interrupted.Add(1)
		return
	}
	j.setState("running")
	res, err := j.eng.Run(j.spec)
	j.finish(res, err)
	switch {
	case err == nil:
		s.completed.Add(1)
	case err == campaign.ErrInterrupted:
		s.interrupted.Add(1)
	default:
		s.failed.Add(1)
	}
}

// lookup resolves the {id} path segment, writing a 404 on failure.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no campaign %q", id))
	}
	return j
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client went away
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.snapshot()) //nolint:errcheck // client went away
}

// handleEvents streams the campaign's status as NDJSON: one line
// immediately, another on every progress change (with a 1 s heartbeat
// fallback), ending with the line that carries the terminal state.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	heartbeat := time.NewTicker(time.Second)
	defer heartbeat.Stop()
	for {
		st, change := j.observe()
		if err := enc.Encode(st); err != nil {
			return
		}
		if canFlush {
			fl.Flush()
		}
		if terminal(st.State) {
			return
		}
		select {
		case <-change:
		case <-heartbeat.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	res, ok := j.takeResult(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	campaign.JSONSink{W: w}.Emit(res) //nolint:errcheck // client went away
}

func (s *server) handleResultCSV(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	res, ok := j.takeResult(w)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	campaign.CSVSink{W: w}.Emit(res) //nolint:errcheck // client went away
}

// statsResponse is the GET /stats document.
type statsResponse struct {
	Cache struct {
		Enabled bool   `json:"enabled"`
		Dir     string `json:"dir,omitempty"`
		fabric.Stats
		Entries int `json:"entries"`
	} `json:"cache"`
	Workers struct {
		Active int64 `json:"active"`
		Slots  int   `json:"slots"`
	} `json:"workers"`
	Campaigns struct {
		Submitted   int64 `json:"submitted"`
		Completed   int64 `json:"completed"`
		Failed      int64 `json:"failed"`
		Interrupted int64 `json:"interrupted"`
	} `json:"campaigns"`
	// Faults aggregates fault-handling events across all campaigns.
	Faults campaign.FaultStats `json:"faults"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var out statsResponse
	if s.cache != nil {
		out.Cache.Enabled = true
		out.Cache.Dir = s.cache.Dir()
		out.Cache.Stats = s.cache.Stats()
		out.Cache.Entries = s.cache.Len()
	}
	out.Workers.Active = s.runActive.Load()
	out.Workers.Slots = s.opts.maxActive * resolveParallel(s.opts.parallel)
	out.Campaigns.Submitted = s.submitted.Load()
	out.Campaigns.Completed = s.completed.Load()
	out.Campaigns.Failed = s.failed.Load()
	out.Campaigns.Interrupted = s.interrupted.Load()
	out.Faults = s.faults.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // client went away
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Wall-clock services have no simulation clock; snapshots are "now".
	snap := s.reg.Snapshot(0)
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w) //nolint:errcheck // client went away
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg}) //nolint:errcheck // client went away
}

// terminal reports whether a campaign state is final.
func terminal(state string) bool {
	return state == "completed" || state == "failed" || state == "interrupted"
}

// snapshot copies the job's observable state under its lock. The cache
// counters come from the engine's own atomics, so a snapshot taken
// mid-run is still consistent enough to serve.
func (j *job) snapshot() jobStatus {
	cs := j.eng.CacheStats()
	var faults *campaign.FaultStats
	if fs := j.eng.FaultStats(); fs != (campaign.FaultStats{}) {
		faults = &fs
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		State:       j.state,
		Done:        j.done,
		Total:       j.total,
		Points:      j.points,
		Reps:        j.reps,
		CacheHits:   cs.Hits,
		CacheMisses: cs.Misses,
		Faults:      faults,
		Error:       j.errMsg,
	}
}

// observe returns a status snapshot together with the change channel
// that will close on the next transition after it.
func (j *job) observe() (jobStatus, <-chan struct{}) {
	st := j.snapshot()
	j.mu.Lock()
	ch := j.change
	j.mu.Unlock()
	return st, ch
}

// notifyLocked wakes every event stream; callers hold j.mu.
func (j *job) notifyLocked() {
	close(j.change)
	j.change = make(chan struct{})
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.notifyLocked()
	j.mu.Unlock()
}

func (j *job) setProgress(done int) {
	j.mu.Lock()
	j.done = done
	j.notifyLocked()
	j.mu.Unlock()
}

// finish records a campaign's outcome.
func (j *job) finish(res *campaign.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.state = "completed"
		j.done = j.total
		j.result = res
	case err == campaign.ErrInterrupted:
		j.state = "interrupted"
		j.errMsg = err.Error()
	default:
		j.state = "failed"
		j.errMsg = err.Error()
	}
	j.notifyLocked()
}

// takeResult returns the completed result or writes the appropriate
// error status (404 is handled by lookup; this covers "not done yet"
// and terminal failures).
func (j *job) takeResult(w http.ResponseWriter) (*campaign.Result, bool) {
	j.mu.Lock()
	state, res, errMsg := j.state, j.result, j.errMsg
	j.mu.Unlock()
	switch {
	case res != nil:
		return res, true
	case state == "failed" || state == "interrupted":
		httpError(w, http.StatusConflict, fmt.Sprintf("campaign %s: %s", state, errMsg))
		return nil, false
	default:
		httpError(w, http.StatusConflict, fmt.Sprintf("campaign is %s; result not ready", state))
		return nil, false
	}
}
