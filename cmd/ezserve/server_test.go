package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a server backed by a throwaway cache directory
// and returns it with an httptest front end.
func newTestServer(t *testing.T, cacheDir string) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(serverOptions{cacheDir: cacheDir, parallel: 2, maxActive: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.shutdown()
		s.wait()
	})
	return s, ts
}

// submitBody is the tiny sweep every test submits: 2 points × 2 reps of
// a 5-simulated-second chain.
const submitBody = `{"name":"t","sweeps":["hops=2,3"],"reps":2,"base_seed":5,"duration_sec":5}`

// submit POSTs a campaign and returns its accepted status.
func submit(t *testing.T, ts *httptest.Server, body string) jobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// await polls a campaign until it reaches a terminal state.
func await(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return jobStatus{}
}

// get fetches a URL, asserting the status code.
func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d: %s", url, resp.StatusCode, wantCode, b)
	}
	return b
}

// TestServeCampaignLifecycle walks the whole API: submit, await, fetch
// result and CSV, then resubmit and require a 100% cache-hit replay
// with byte-identical output — the serving form of the warm-cache pin.
func TestServeCampaignLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, filepath.Join(t.TempDir(), "cache"))

	st := submit(t, ts, submitBody)
	if st.ID == "" || st.Total != 4 || st.Points != 2 || st.Reps != 2 {
		t.Fatalf("accepted status = %+v", st)
	}
	fin := await(t, ts, st.ID)
	if fin.State != "completed" || fin.Done != 4 {
		t.Fatalf("final status = %+v", fin)
	}
	if fin.CacheMisses != 4 || fin.CacheHits != 0 {
		t.Errorf("cold campaign: %d hits / %d misses, want 0/4", fin.CacheHits, fin.CacheMisses)
	}

	coldJSON := get(t, ts.URL+"/campaigns/"+st.ID+"/result", http.StatusOK)
	coldCSV := get(t, ts.URL+"/campaigns/"+st.ID+"/result.csv", http.StatusOK)
	if !bytes.Contains(coldCSV, []byte("agg_kbps")) {
		t.Error("CSV result lacks its header")
	}

	// Resubmit the identical sweep: served entirely from the fabric store.
	st2 := submit(t, ts, submitBody)
	fin2 := await(t, ts, st2.ID)
	if fin2.State != "completed" {
		t.Fatalf("replay status = %+v", fin2)
	}
	if fin2.CacheMisses != 0 || fin2.CacheHits != 4 {
		t.Errorf("replay: %d hits / %d misses, want 4/0", fin2.CacheHits, fin2.CacheMisses)
	}
	warmJSON := get(t, ts.URL+"/campaigns/"+st2.ID+"/result", http.StatusOK)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Error("cache-served result diverges from the simulated one")
	}

	// The listing shows both, in submission order.
	var list []jobStatus
	if err := json.Unmarshal(get(t, ts.URL+"/campaigns", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != st.ID || list[1].ID != st2.ID {
		t.Errorf("listing = %+v", list)
	}

	// Stats and metrics reflect the traffic.
	var stats statsResponse
	if err := json.Unmarshal(get(t, ts.URL+"/stats", http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Cache.Enabled || stats.Cache.Hits != 4 || stats.Cache.Misses != 4 || stats.Cache.Entries != 4 {
		t.Errorf("stats = %+v", stats.Cache)
	}
	if stats.Campaigns.Completed != 2 {
		t.Errorf("completed = %d, want 2", stats.Campaigns.Completed)
	}
	metrics := get(t, ts.URL+"/metrics", http.StatusOK)
	for _, name := range []string{"fabric.cache.hits", "fabric.workers.active", "serve.campaigns.completed"} {
		if !bytes.Contains(metrics, []byte(name)) {
			t.Errorf("metrics snapshot lacks %s", name)
		}
	}
}

// TestServeEvents reads the NDJSON stream to completion: at least one
// progress line, ending with a terminal line.
func TestServeEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	_, ts := newTestServer(t, "")
	st := submit(t, ts, submitBody)
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type = %q", ct)
	}
	var last jobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || !terminal(last.State) {
		t.Errorf("stream ended after %d lines in state %q", lines, last.State)
	}
	if last.State != "completed" || last.Done != 4 {
		t.Errorf("final event = %+v", last)
	}
}

// TestServeErrors pins the failure surfaces: malformed and invalid
// submissions are 400s, unknown campaigns 404, early result fetches 409.
func TestServeErrors(t *testing.T) {
	s, ts := newTestServer(t, "")

	for _, body := range []string{
		`{not json`,
		`{"sweeps":["bogus=1"]}`,
		`{"sweeps":["hops=2"],"unknown_field":1}`,
		`{"axes":[{"name":"mode","values":["warp-drive"]}]}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	get(t, ts.URL+"/campaigns/c9999", http.StatusNotFound)
	get(t, ts.URL+"/campaigns/c9999/result", http.StatusNotFound)

	// A queued campaign has no result yet: occupy the server's single
	// execution slot so the submission cannot start (simulations finish
	// too fast to catch in flight reliably).
	s.active <- struct{}{}
	st := submit(t, ts, `{"name":"queued","sweeps":["hops=2"],"reps":1,"duration_sec":5}`)
	if body := get(t, ts.URL+"/campaigns/"+st.ID+"/result", http.StatusConflict); !bytes.Contains(body, []byte("not ready")) {
		t.Errorf("early result fetch = %s", body)
	}
	<-s.active
}

// TestServeShutdownInterruptsQueued checks shutdown marks queued
// campaigns interrupted instead of leaving clients hanging.
func TestServeShutdownInterruptsQueued(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, ts := newTestServer(t, "")
	// Fill the single execution slot, then queue another campaign.
	first := submit(t, ts, submitBody)
	second := submit(t, ts, submitBody)
	s.shutdown()
	s.wait()
	for _, id := range []string{first.ID, second.ID} {
		st := await(t, ts, id)
		if !terminal(st.State) {
			t.Errorf("campaign %s left in state %q after shutdown", id, st.State)
		}
	}
	var stats statsResponse
	if err := json.Unmarshal(get(t, ts.URL+"/stats", http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if got := stats.Campaigns.Completed + stats.Campaigns.Interrupted; got != 2 {
		t.Errorf("completed+interrupted = %d, want 2 (%+v)", got, stats.Campaigns)
	}
}

// TestJobIDsSequential pins the ID scheme clients script against.
func TestJobIDsSequential(t *testing.T) {
	_, ts := newTestServer(t, "")
	for i := 1; i <= 3; i++ {
		st := submit(t, ts, `{"name":"id","sweeps":["hops=2"],"reps":1,"duration_sec":1}`)
		if want := fmt.Sprintf("c%04d", i); st.ID != want {
			t.Errorf("submission %d got ID %q, want %q", i, st.ID, want)
		}
	}
}
