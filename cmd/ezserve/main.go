// Command ezserve is the campaign service: a long-running HTTP/JSON
// server that accepts experiment-campaign submissions, executes them on
// the in-process worker pool, and serves results — fronted by the
// content-addressed fabric store (internal/fabric), so a sweep any
// client has run before is answered from cache without simulating.
// Campaigns are deterministic (seed derivation is a pure function of
// the spec), which is what makes serving them safe: two clients
// submitting the same sweep get byte-identical results no matter which
// instance, process, or cache entry produced them.
//
// Usage:
//
//	ezserve -addr 127.0.0.1:8370 -cache-dir fabric-cache
//
// API (all JSON unless noted):
//
//	POST /campaigns               submit a sweep; body e.g.
//	                              {"name":"demo",
//	                               "sweeps":["mode=802.11,ezflow","hops=2..4"],
//	                               "reps":3,"duration_sec":30}
//	                              (axes may also be given structurally as
//	                              "axes":[{"name":"mode","values":[...]}], and
//	                              "scenario" embeds a scenario file inline)
//	GET  /campaigns               list submissions, oldest first
//	GET  /campaigns/{id}          one campaign's status: state, done/total,
//	                              live cache hit/miss counts
//	GET  /campaigns/{id}/events   NDJSON progress stream: one status line per
//	                              change until the campaign reaches a
//	                              terminal state
//	GET  /campaigns/{id}/result   full campaign result (same document as
//	                              `ezcampaign -json`)
//	GET  /campaigns/{id}/result.csv  per-replication CSV
//	GET  /stats                   cache and worker-pool statistics
//	GET  /metrics                 observability snapshot (internal/obs):
//	                              fabric.cache.* and fabric.workers.* gauges
//	GET  /debug/pprof/            Go profiling endpoints
//
// Publishing follows the PR 6 obs.Server discipline: handlers never
// touch mutable campaign state — every engine publishes through atomic
// counters and mutex-copied snapshots, so serving cannot perturb a run.
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, no new
// replications are dispatched, in-flight ones finish and reach the
// cache (store writes are atomic), so resubmitting an interrupted sweep
// to the next instance resumes where it stopped.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ezflow/internal/buildinfo"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8370", "listen address (host:port; :0 picks a free port)")
		cacheDir  = flag.String("cache-dir", "fabric-cache", "fabric result-store directory (empty disables caching)")
		parallel  = flag.Int("parallel", 0, "max replications in flight per campaign (0 = GOMAXPROCS)")
		maxActive = flag.Int("max-active", 2, "campaigns executing concurrently; further submissions queue")
		prune     = flag.Int("prune", 0, "evict oldest cache entries beyond this count at startup (0 = keep all)")
		runTO     = flag.Duration("run-timeout", 0, "wall-clock cap per replication (0 = none); a run over the cap is recorded failed, not a failed campaign")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("ezserve " + buildinfo.String())
		return
	}

	s, err := newServer(serverOptions{
		cacheDir:   *cacheDir,
		parallel:   *parallel,
		maxActive:  *maxActive,
		runTimeout: *runTO,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *prune > 0 && s.cache != nil {
		if n := s.cache.Prune(*prune); n > 0 {
			fmt.Fprintf(os.Stderr, "ezserve: pruned %d cache entries beyond %d\n", n, *prune)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := hardenedServer(s.handler())
	fmt.Fprintf(os.Stderr, "ezserve: serving campaigns at http://%s (parallel %d, max-active %d",
		ln.Addr(), resolveParallel(*parallel), *maxActive)
	if s.cache != nil {
		fmt.Fprintf(os.Stderr, ", cache %s)\n", s.cache.Dir())
	} else {
		fmt.Fprintln(os.Stderr, ", cache disabled)")
	}

	// Graceful shutdown: stop listening, stop dispatching new
	// replications, let in-flight ones finish into the cache. A second
	// signal aborts immediately.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "ezserve: shutting down — letting in-flight runs finish (signal again to abort)")
		go func() {
			<-sigc
			os.Exit(130)
		}()
		s.shutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // exiting anyway
	}()

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatalf("%v", err)
	}
	s.wait()
	if s.cache != nil {
		st := s.cache.Stats()
		fmt.Fprintf(os.Stderr, "ezserve: cache: %d hit / %d miss (%d entries)\n",
			st.Hits, st.Misses, s.cache.Len())
	}
}

// resolveParallel mirrors campaign.Engine's 0-means-GOMAXPROCS default
// for the startup banner and the utilization denominator.
func resolveParallel(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ezserve: "+format+"\n", args...)
	os.Exit(1)
}
