package ezflow

import (
	"testing"

	"ezflow/internal/mobility"
)

// mobileGridConfig is a short mobile-grid run used across the tests
// below: 3x3 grid, EZ-Flow, waypoint mobility at vehicular speed so
// decode-range membership actually changes within the horizon.
func mobileGridConfig(model string) Config {
	cfg := DefaultConfig()
	cfg.Mode = ModeEZFlow
	cfg.Duration = 30 * Second
	cfg.Mobility = &mobility.Config{
		Model: model,
		Opts:  mobility.Options{SpeedMps: 20, PauseSec: 1},
	}
	return cfg
}

// TestMobilityOffByteIdentical pins the subsystem's first determinism
// rule: a nil Mobility config and every off spelling produce the exact
// run — same deliveries, same throughput series — because mobility-off
// attaches nothing and schedules nothing.
func TestMobilityOffByteIdentical(t *testing.T) {
	run := func(mob *mobility.Config) *Result {
		cfg := DefaultConfig()
		cfg.Mode = ModeEZFlow
		cfg.Duration = 30 * Second
		cfg.Mobility = mob
		return NewGrid(3, 3, cfg).Run()
	}
	base := run(nil)
	for _, model := range []string{"", "off", "static"} {
		got := run(&mobility.Config{Model: model})
		if got.MobilityStats != nil {
			t.Fatalf("model %q: off run reported mobility stats %+v", model, got.MobilityStats)
		}
		for f, fr := range base.Flows {
			g := got.Flows[f]
			if g.Delivered != fr.Delivered || g.MeanThroughputKbps != fr.MeanThroughputKbps ||
				g.MeanDelaySec != fr.MeanDelaySec {
				t.Fatalf("model %q flow %v diverged from nil-mobility run: %+v vs %+v",
					model, f, g, fr)
			}
		}
	}
}

// TestMobilityEndToEnd runs waypoint mobility through the full public
// API and checks the engine actually drove the mesh: ticks fired, nodes
// moved, the pinned gateway did not, repairs happened, the incremental
// index still matches the oracle, and traffic kept flowing.
func TestMobilityEndToEnd(t *testing.T) {
	sc := NewGrid(3, 3, mobileGridConfig("waypoint"))
	gw := sc.Mesh.Ch.Position(0)
	res := sc.Run()
	st := res.MobilityStats
	if st == nil {
		t.Fatal("mobile run reported no mobility stats")
	}
	if st.Ticks == 0 || st.Moves == 0 {
		t.Fatalf("engine idle: %+v", st)
	}
	if st.Repairs == 0 {
		t.Fatalf("20 m/s on a 200 m grid must change decode membership: %+v", st)
	}
	if sc.Mesh.Ch.Position(0) != gw {
		t.Fatalf("gateway moved to %v despite the default pin", sc.Mesh.Ch.Position(0))
	}
	if err := sc.Mesh.Ch.VerifyIndex(); err != nil {
		t.Fatalf("index diverged from oracle after mobile run: %v", err)
	}
	var delivered uint64
	for _, fr := range res.Flows {
		delivered += fr.Delivered
	}
	if delivered == 0 {
		t.Fatal("no packet delivered during the mobile run")
	}
}

// TestMobilityDeterministicReplay: two identical mobile runs are
// identical, end to end.
func TestMobilityDeterministicReplay(t *testing.T) {
	run := func() *Result { return NewGrid(3, 3, mobileGridConfig("waypoint")).Run() }
	a, b := run(), run()
	if *a.MobilityStats != *b.MobilityStats {
		t.Fatalf("mobility stats diverged: %+v vs %+v", a.MobilityStats, b.MobilityStats)
	}
	for f, fr := range a.Flows {
		g := b.Flows[f]
		if g.Delivered != fr.Delivered || g.MeanThroughputKbps != fr.MeanThroughputKbps {
			t.Fatalf("flow %v replay diverged: %+v vs %+v", f, g, fr)
		}
	}
}

// TestWorkloadDownlinkPopulation expands a downlink population and
// checks allocation: flow ids above the builder's, routes from the
// gateway to ascending non-gateway clients, everyone metered, and data
// delivered on the always-on shape.
func TestWorkloadDownlinkPopulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 30 * Second
	cfg.Workload = &WorkloadSpec{Clients: 5, RateBps: 100e3}
	sc := NewGrid(3, 3, cfg)
	// Grid(3,3) installs flows 1 and 2; the population is 3..7.
	for fid := FlowID(3); fid <= 7; fid++ {
		route := sc.Mesh.Route(fid)
		if len(route) < 2 || route[0] != 0 {
			t.Fatalf("client flow %v route %v does not start at the gateway", fid, route)
		}
		if sc.Meters[fid] == nil || sc.Sources[fid] == nil {
			t.Fatalf("client flow %v not metered/sourced", fid)
		}
	}
	res := sc.Run()
	for fid := FlowID(3); fid <= 7; fid++ {
		if res.Flows[fid].Delivered == 0 {
			t.Fatalf("always-on client flow %v delivered nothing", fid)
		}
	}
}

// TestWorkloadUplinkAndShapes covers the uplink direction and both
// random activity shapes, pinning that runs are replay-deterministic
// (all schedule randomness comes from the dedicated workload RNG).
func TestWorkloadUplinkAndShapes(t *testing.T) {
	shapes := map[string]WorkloadSpec{
		"onoff":   {Kind: WorkloadUplink, Clients: 4, OnMeanSec: 2, OffMeanSec: 3},
		"arrival": {Kind: WorkloadUplink, Clients: 4, ArrivalPerSec: 0.3, HoldMeanSec: 4},
	}
	for name, spec := range shapes {
		spec := spec
		run := func() *Result {
			cfg := DefaultConfig()
			cfg.Duration = 60 * Second
			cfg.Workload = &spec
			sc := NewGrid(3, 3, cfg)
			for fid := FlowID(3); fid <= 6; fid++ {
				route := sc.Mesh.Route(fid)
				if len(route) < 2 || route[len(route)-1] != 0 {
					t.Fatalf("%s: uplink flow %v route %v does not end at the gateway", name, fid, route)
				}
			}
			return sc.Run()
		}
		a, b := run(), run()
		anyActive := false
		for fid := FlowID(3); fid <= 6; fid++ {
			if a.Flows[fid].Delivered != b.Flows[fid].Delivered {
				t.Fatalf("%s: flow %v replay diverged: %d vs %d",
					name, fid, a.Flows[fid].Delivered, b.Flows[fid].Delivered)
			}
			if a.Flows[fid].Delivered > 0 {
				anyActive = true
			}
		}
		if !anyActive {
			t.Fatalf("%s: no client ever delivered over 60 s", name)
		}
	}
}

// TestWorkloadValidate exercises the spec's error surface.
func TestWorkloadValidate(t *testing.T) {
	bad := []WorkloadSpec{
		{Clients: 0},
		{Clients: 3, Kind: "sideways"},
		{Clients: 3, RateBps: -1},
		{Clients: 3, OnMeanSec: 1},     // half an on/off pair
		{Clients: 3, ArrivalPerSec: 1}, // half an arrival pair
		{Clients: 3, OnMeanSec: 1, OffMeanSec: 1, ArrivalPerSec: 1}, // both shapes
		{Clients: 3, OnMeanSec: -1, OffMeanSec: 1},                  // negative mean
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d (%+v): accepted", i, w)
		}
	}
	good := WorkloadSpec{Clients: 3, OnMeanSec: 1, OffMeanSec: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestMobileWorkloadCombined is the gateway-scale headline scenario:
// a mobile mesh serving a bursty downlink population, end to end.
func TestMobileWorkloadCombined(t *testing.T) {
	cfg := mobileGridConfig("waypoint")
	cfg.Workload = &WorkloadSpec{Clients: 6, OnMeanSec: 3, OffMeanSec: 3}
	sc := NewGrid(3, 3, cfg)
	res := sc.Run()
	if res.MobilityStats == nil || res.MobilityStats.Moves == 0 {
		t.Fatalf("mobility idle under combined load: %+v", res.MobilityStats)
	}
	if err := sc.Mesh.Ch.VerifyIndex(); err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 8 { // 2 builder flows + 6 clients
		t.Fatalf("expected 8 metered flows, got %d", len(res.Flows))
	}
}

// BenchmarkWaypointDisk200 is the bench-gate entry for mobility at
// gateway scale: a 200-node random disk with waypoint movement and the
// default rim flow, 2 simulated seconds per iteration. It exercises
// MoveNode, grid re-bucketing, and repair on a realistic topology.
func BenchmarkWaypointDisk200(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Duration = 2 * Second
		cfg.Mobility = &mobility.Config{
			Model:   "waypoint",
			Opts:    mobility.Options{SpeedMps: 15},
			TickSec: 0.25,
		}
		res := NewRandom(200, 0, cfg).Run()
		if res.MobilityStats == nil || res.MobilityStats.Ticks == 0 {
			b.Fatal("mobility did not run")
		}
	}
}
